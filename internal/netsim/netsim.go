// Package netsim routes h-relations over the point-to-point networks
// of internal/topology with a synchronous store-and-forward packet
// simulator, to measure the bandwidth and latency parameters a machine
// built on each topology can actually attain (Section 5 of the paper).
//
// Model: time advances in unit steps; each directed link transmits at
// most one packet per step out of a FIFO queue; packets follow
// precomputed shortest-path next hops (optionally through a random
// Valiant intermediate to smooth adversarial patterns). Under the
// single-port discipline a node may transmit on only one of its links
// per step (round-robin over non-empty queues), which is what
// separates the two hypercube rows of Table 1.
package netsim

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Network wraps a topology with routing tables.
type Network struct {
	G *topology.Graph
	// next[u*n + d] is the neighbor of node u on a shortest path to
	// node d (u itself when u == d).
	next []int32
	// edge[u][k] is the directed-edge index of u's k-th outgoing
	// link; edges are numbered consecutively.
	edgeIdx [][]int32
	// edgeTo[e] is the head node of directed edge e.
	edgeTo []int32
	nEdges int
}

// New builds routing tables for g (BFS from every node).
func New(g *topology.Graph) *Network {
	n := g.Nodes()
	net := &Network{G: g, next: make([]int32, n*n)}
	net.edgeIdx = make([][]int32, n)
	for u := 0; u < n; u++ {
		net.edgeIdx[u] = make([]int32, len(g.Adj[u]))
		for k, v := range g.Adj[u] {
			net.edgeIdx[u][k] = int32(net.nEdges)
			net.edgeTo = append(net.edgeTo, int32(v))
			net.nEdges++
		}
	}
	// BFS from each destination over the undirected graph; next hop
	// toward d is the BFS parent.
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	for d := 0; d < n; d++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[d] = 0
		queue = append(queue[:0], int32(d))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Adj[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					// From v, the next hop toward d is u.
					net.next[int(v)*n+d] = u
					queue = append(queue, int32(v))
				}
			}
		}
		net.next[d*n+d] = int32(d)
		for u := 0; u < n; u++ {
			if dist[u] < 0 {
				panic(fmt.Sprintf("netsim: %s disconnected (node %d unreachable from %d)", g.Name, u, d))
			}
		}
	}
	return net
}

// NextHop returns the neighbor of u on a shortest path to d.
func (net *Network) NextHop(u, d int) int {
	return int(net.next[u*net.G.Nodes()+d])
}

// RouteOptions configures a routing run.
type RouteOptions struct {
	// Valiant routes each packet through a uniformly random
	// intermediate node first (two-phase randomized routing),
	// trading a factor ~2 in distance for smoothed congestion.
	Valiant bool
	// Seed drives the Valiant intermediate choices.
	Seed uint64
	// MaxSteps aborts a run that exceeds this bound (0 selects a
	// generous default); exceeding it panics, signalling a bug.
	MaxSteps int
}

// RouteResult reports one routing run.
type RouteResult struct {
	// Steps is the number of synchronous steps until the last packet
	// was delivered.
	Steps int
	// Packets is the number of packets routed.
	Packets int
	// TotalHops sums link traversals over all packets.
	TotalHops int64
	// MaxQueue is the peak FIFO depth on any directed link.
	MaxQueue int
}

type packet struct {
	dst   int32 // final destination node
	via   int32 // Valiant intermediate (-1 when unused or passed)
	hops  int32
	birth int32
}

// Route delivers every message of rel and returns the measured cost.
func (net *Network) Route(rel relation.Relation, opts RouteOptions) RouteResult {
	if rel.P != net.G.P() {
		panic(fmt.Sprintf("netsim: relation has %d processors, network %d", rel.P, net.G.P()))
	}
	n := net.G.Nodes()
	rng := stats.NewRNG(opts.Seed)
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 10000 + 200*n + 40*len(rel.Pairs)
	}

	queues := make([][]packet, net.nEdges)
	res := RouteResult{Packets: len(rel.Pairs)}
	remaining := 0

	enqueue := func(u int, pk packet) bool {
		// Returns false when the packet is already home.
		target := pk.via
		if target < 0 {
			target = pk.dst
		}
		if int32(u) == pk.dst && pk.via < 0 {
			return false
		}
		if int32(u) == target && pk.via >= 0 {
			// Reached the intermediate; head for the real
			// destination.
			pk.via = -1
			if int32(u) == pk.dst {
				return false
			}
			target = pk.dst
		}
		hop := net.NextHop(u, int(target))
		for k, v := range net.G.Adj[u] {
			if v == hop {
				e := net.edgeIdx[u][k]
				queues[e] = append(queues[e], pk)
				if len(queues[e]) > res.MaxQueue {
					res.MaxQueue = len(queues[e])
				}
				return true
			}
		}
		panic("netsim: next hop not adjacent (bug)")
	}

	for _, pr := range rel.Pairs {
		srcNode := net.G.Processors[pr.Src]
		dstNode := net.G.Processors[pr.Dst]
		pk := packet{dst: int32(dstNode), via: -1}
		if opts.Valiant {
			pk.via = int32(net.G.Processors[rng.Intn(rel.P)])
		}
		if enqueue(srcNode, pk) {
			remaining++
		}
	}

	type arrival struct {
		node int
		pk   packet
	}
	var arrivals []arrival
	for step := 1; remaining > 0; step++ {
		if step > maxSteps {
			panic(fmt.Sprintf("netsim: %s routing exceeded %d steps with %d packets left (bug or pathological congestion)", net.G.Name, maxSteps, remaining))
		}
		arrivals = arrivals[:0]
		if net.G.MultiPort {
			for e := 0; e < net.nEdges; e++ {
				if len(queues[e]) == 0 {
					continue
				}
				pk := queues[e][0]
				queues[e] = queues[e][1:]
				pk.hops++
				arrivals = append(arrivals, arrival{node: int(net.edgeTo[e]), pk: pk})
			}
		} else {
			// Single-port: each node transmits on one link,
			// rotating the starting link each step for fairness.
			for u := 0; u < n; u++ {
				deg := len(net.edgeIdx[u])
				if deg == 0 {
					continue
				}
				start := (step + u) % deg
				for k := 0; k < deg; k++ {
					e := net.edgeIdx[u][(start+k)%deg]
					if len(queues[e]) == 0 {
						continue
					}
					pk := queues[e][0]
					queues[e] = queues[e][1:]
					pk.hops++
					arrivals = append(arrivals, arrival{node: int(net.edgeTo[e]), pk: pk})
					break
				}
			}
		}
		for _, a := range arrivals {
			res.TotalHops++
			if !enqueue(a.node, a.pk) {
				remaining--
				res.Steps = step
			}
		}
	}
	return res
}

// Measurement is the empirically fitted cost model of a topology:
// routing a random h-relation takes about G*h + L steps.
type Measurement struct {
	Topology string
	P        int
	// Fit of mean routing steps against h.
	G, L float64
	R2   float64
	// PermTime is the measured time to route one random permutation
	// (an empirical latency/diameter proxy).
	PermTime float64
	// Points holds (h, steps) averages used for the fit.
	Points [][2]float64
}

// MeasureGL routes random regular h-relations for each h in hs
// (averaging over trials) and fits steps = G*h + L.
func MeasureGL(g *topology.Graph, hs []int, trials int, seed uint64, valiant bool) Measurement {
	net := New(g)
	rng := stats.NewRNG(seed)
	m := Measurement{Topology: g.Name, P: g.P()}
	xs := make([]float64, 0, len(hs))
	ys := make([]float64, 0, len(hs))
	for _, h := range hs {
		var sum float64
		for t := 0; t < trials; t++ {
			rel := relation.RandomRegular(rng, g.P(), h)
			r := net.Route(rel, RouteOptions{Valiant: valiant, Seed: rng.Uint64()})
			sum += float64(r.Steps)
		}
		mean := sum / float64(trials)
		xs = append(xs, float64(h))
		ys = append(ys, mean)
		m.Points = append(m.Points, [2]float64{float64(h), mean})
		if h == 1 {
			m.PermTime = mean
		}
	}
	fit := stats.FitLine(xs, ys)
	m.G, m.L, m.R2 = fit.Slope, fit.Intercept, fit.R2
	if m.PermTime == 0 && len(ys) > 0 {
		m.PermTime = ys[0]
	}
	return m
}

// LogPParams derives best attainable stall-free LogP parameters
// (G*, L*) from a topology measurement, following Section 5: the LogP
// definition requires any ceil(L/G)-relation to route within L, and
// with the fitted cost T(h) = gamma*h + delta that constraint is
// L >= ceil(L/G)*gamma + delta. Choosing G* = 2*gamma leaves half of
// L for the remaining terms, and L* = 3*(gamma + delta) adds headroom
// for worst-case deviations above the mean-based fit (the definition
// is a worst-case guarantee): T(L*/G*) <= 1.5*(gamma+delta) + delta
// <= L*. This realizes the paper's G* = Theta(gamma(p)),
// L* = Theta(gamma(p) + delta(p)).
func (m Measurement) LogPParams() (gStar, lStar float64) {
	gamma := m.G
	if gamma < 1 {
		gamma = 1
	}
	delta := m.L
	if delta < 1 {
		delta = 1
	}
	gStar = 2 * gamma
	lStar = 3 * (gamma + delta)
	if lStar < gStar {
		lStar = gStar
	}
	return gStar, lStar
}
