package netsim

// ring is a growable FIFO queue over a power-of-two circular buffer.
// It replaces the queues[e] = queues[e][1:] slice FIFOs of the first
// simulator: a pop is O(1) without abandoning buffer prefix capacity,
// so a router that reuses its rings reaches zero steady-state
// allocations once every ring has grown to its high-water mark.
type ring[T any] struct {
	buf  []T
	head int // index of the oldest element; always < len(buf)
	n    int // number of queued elements
}

// push appends v at the tail, growing the buffer when full.
func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// pop removes and returns the oldest element; it panics on an empty
// ring (a simulator bug, queues are popped only while tracked active).
func (r *ring[T]) pop() T {
	if r.n == 0 {
		panic("netsim: pop from empty ring (bug)")
	}
	v := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// grow doubles the buffer (minimum 8 slots), unrolling the wrapped
// contents to the front.
func (r *ring[T]) grow() {
	capNew := 2 * len(r.buf)
	if capNew < 8 {
		capNew = 8
	}
	buf := make([]T, capNew)
	mask := len(r.buf) - 1
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&mask]
	}
	r.buf, r.head = buf, 0
}

// bitset is a fixed-size set of small integers, used to track the
// directed edges (multi-port) or nodes (single-port) that currently
// hold packets, so a simulation step visits only active links instead
// of scanning every edge of the network.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)   { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }
