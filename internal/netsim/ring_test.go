package netsim

import "testing"

func TestRingFIFOOrder(t *testing.T) {
	var r ring[int]
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			r.push(i)
		}
		for i := 0; i < 100; i++ {
			if got := r.pop(); got != i {
				t.Fatalf("round %d: pop = %d, want %d", round, got, i)
			}
		}
		if r.n != 0 {
			t.Fatalf("round %d: %d elements left", round, r.n)
		}
	}
}

func TestRingInterleavedWrap(t *testing.T) {
	// Interleave pushes and pops so the head wraps repeatedly across
	// buffer growth.
	var r ring[int]
	next, expect := 0, 0
	for i := 0; i < 1000; i++ {
		for k := 0; k < 3; k++ {
			r.push(next)
			next++
		}
		for k := 0; k < 2; k++ {
			if got := r.pop(); got != expect {
				t.Fatalf("pop = %d, want %d", got, expect)
			}
			expect++
		}
	}
	for r.n > 0 {
		if got := r.pop(); got != expect {
			t.Fatalf("drain pop = %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d elements, pushed %d", expect, next)
	}
}

func TestRingPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pop on empty ring did not panic")
		}
	}()
	var r ring[int]
	r.pop()
}

// FuzzRing drives a ring with an arbitrary push/pop program and checks
// every invariant against a plain-slice reference queue: FIFO order,
// length accounting, and power-of-two buffer geometry.
func FuzzRing(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 0, 4, 0})
	f.Add([]byte{0})
	f.Add([]byte{255, 255, 255, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, program []byte) {
		var r ring[byte]
		var ref []byte
		for _, op := range program {
			if op == 0 {
				// Pop (skipped when empty; emptiness must agree).
				if (r.n == 0) != (len(ref) == 0) {
					t.Fatalf("length mismatch: ring %d, reference %d", r.n, len(ref))
				}
				if len(ref) == 0 {
					continue
				}
				got := r.pop()
				if got != ref[0] {
					t.Fatalf("pop = %d, want %d", got, ref[0])
				}
				ref = ref[1:]
			} else {
				r.push(op)
				ref = append(ref, op)
			}
			if r.n != len(ref) {
				t.Fatalf("length mismatch after op %d: ring %d, reference %d", op, r.n, len(ref))
			}
			if len(r.buf) != 0 && len(r.buf)&(len(r.buf)-1) != 0 {
				t.Fatalf("buffer size %d not a power of two", len(r.buf))
			}
			if r.n > len(r.buf) {
				t.Fatalf("%d elements in a %d-slot buffer", r.n, len(r.buf))
			}
			if len(r.buf) > 0 && (r.head < 0 || r.head >= len(r.buf)) {
				t.Fatalf("head %d outside buffer of %d", r.head, len(r.buf))
			}
		}
		// Drain and compare the tail.
		for i := 0; r.n > 0; i++ {
			got := r.pop()
			if got != ref[i] {
				t.Fatalf("drain pop = %d, want %d", got, ref[i])
			}
		}
	})
}
