package netsim

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/topology"
)

// TestRouteValiantSteadyStateAlloc pins the Router contract stated on the
// type: repeated Route calls on a held Router reuse the per-run
// scratch (edge rings, active-link bitsets, the arrival buffer) and
// reach zero steady-state allocations — here under Valiant routing on
// both port disciplines (router_test.go pins the plain single-port
// case). This is the dynamic guard
// behind the allocdiscipline //hot:path mark on Route — the analyzer
// rejects escapes statically, this pins the end-to-end count.
func TestRouteValiantSteadyStateAlloc(t *testing.T) {
	for _, multiPort := range []bool{true, false} {
		g := topology.Hypercube(64, multiPort)
		net := New(g)
		rt := net.NewRouter()
		rel := relation.RandomRegular(stats.NewRNG(11), g.P(), 4)
		route := func() {
			rt.Route(rel, RouteOptions{Valiant: true, Seed: 99})
		}
		route() // grow rings and the arrival buffer to their high-water sizes
		if avg := testing.AllocsPerRun(10, route); avg != 0 {
			t.Errorf("multiPort=%v: warm Route allocates %.1f objects/run, want 0", multiPort, avg)
		}
	}
}

// TestMeasureGLInnerLoopAlloc bounds the per-job cost of the
// MeasureGL sweep's inner loop: one trial draws its RNG and its
// random h-relation (inherently O(h) allocations of O(p)-sized
// buffers) and then routes it on the worker's held Router for free.
// The budget is the draw's own profile with no room for any
// per-packet or per-step routing allocation on top.
func TestMeasureGLInnerLoopAlloc(t *testing.T) {
	const h, trials, seed = 4, 3, uint64(7)
	g := topology.Hypercube(64, true)
	net := New(g)
	rt := net.NewRouter()

	// The draw alone: what one job pays before it touches the router.
	j := 0
	draw := func() {
		rng := stats.NewRNG(trialSeed(seed, h, j%trials))
		rel := relation.RandomRegular(rng, g.P(), h)
		_ = rel
		j++
	}
	drawAvg := testing.AllocsPerRun(10, draw)

	// The full inner loop, warm router held across jobs as measureGL's
	// workers hold theirs.
	job := func() {
		rng := stats.NewRNG(trialSeed(seed, h, j%trials))
		rel := relation.RandomRegular(rng, g.P(), h)
		r := rt.Route(rel, RouteOptions{Valiant: true, Seed: rng.Uint64()})
		if r.Steps <= 0 {
			t.Fatal("routing did nothing")
		}
		j++
	}
	for range trials {
		job() // reach the router's high-water sizes for every trial seed
	}
	jobAvg := testing.AllocsPerRun(2*trials, job)

	if jobAvg > drawAvg {
		t.Errorf("MeasureGL inner loop allocates %.1f objects/job, draw alone costs %.1f: routing must add 0", jobAvg, drawAvg)
	}
}
