package netsim

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/topology"
)

func TestNextHopShortensDistance(t *testing.T) {
	g := topology.Array(4, 2, false)
	net := New(g)
	// Walking next hops from any node must reach any destination in
	// at most Diameter steps.
	diam := g.Diameter()
	for u := 0; u < g.Nodes(); u++ {
		for d := 0; d < g.Nodes(); d++ {
			cur := u
			for steps := 0; cur != d; steps++ {
				if steps > diam {
					t.Fatalf("next-hop walk %d->%d exceeded diameter", u, d)
				}
				cur = net.NextHop(cur, d)
			}
		}
	}
}

func TestRouteSinglePermutationMesh(t *testing.T) {
	g := topology.Array(4, 2, false)
	net := New(g)
	rng := stats.NewRNG(1)
	rel := relation.RandomPermutation(rng, 16)
	res := net.Route(rel, RouteOptions{})
	if res.Packets != 16 {
		t.Fatalf("packets = %d", res.Packets)
	}
	// A permutation on a 4x4 mesh completes within a small multiple
	// of the diameter.
	if res.Steps < 1 || res.Steps > 8*g.Diameter() {
		t.Fatalf("steps = %d, diameter %d", res.Steps, g.Diameter())
	}
}

func TestRouteDeliversEverything(t *testing.T) {
	graphs := []*topology.Graph{
		topology.Array(4, 2, true),
		topology.Hypercube(16, true),
		topology.Hypercube(16, false),
		topology.Butterfly(3),
		topology.CCC(3),
		topology.ShuffleExchange(4),
		topology.MeshOfTrees(4),
	}
	rng := stats.NewRNG(7)
	for _, g := range graphs {
		net := New(g)
		for _, h := range []int{1, 3} {
			rel := relation.RandomRegular(rng, g.P(), h)
			res := net.Route(rel, RouteOptions{Seed: 5})
			if res.Packets != len(rel.Pairs) {
				t.Fatalf("%s h=%d: %d packets", g.Name, h, res.Packets)
			}
			if res.Steps <= 0 {
				t.Fatalf("%s h=%d: steps %d", g.Name, h, res.Steps)
			}
			if res.TotalHops < int64(res.Packets) {
				// Every packet with src != dst needs >= 1 hop;
				// random regular relations rarely have fixed
				// points only.
				t.Fatalf("%s h=%d: hops %d < packets %d", g.Name, h, res.TotalHops, res.Packets)
			}
		}
	}
}

func TestRouteSelfMessagesFree(t *testing.T) {
	g := topology.Hypercube(8, true)
	net := New(g)
	rel := relation.Relation{P: 8, Pairs: []relation.Pair{{Src: 3, Dst: 3}}}
	res := net.Route(rel, RouteOptions{})
	if res.Steps != 0 || res.TotalHops != 0 {
		t.Fatalf("self-delivery cost: %+v", res)
	}
}

func TestValiantRoutesCorrectly(t *testing.T) {
	g := topology.Hypercube(16, false)
	net := New(g)
	rng := stats.NewRNG(3)
	rel := relation.RandomRegular(rng, 16, 4)
	res := net.Route(rel, RouteOptions{Valiant: true, Seed: 11})
	if res.Packets != len(rel.Pairs) || res.Steps <= 0 {
		t.Fatalf("valiant routing failed: %+v", res)
	}
}

func TestValiantSmoothsAdversarialPattern(t *testing.T) {
	// Bit-reversal-like traffic on a mesh congests dimension-order
	// deterministic routing; Valiant should not be catastrophically
	// worse and typically helps on worst cases. Here we only assert
	// both complete and produce sane step counts.
	g := topology.Array(8, 2, false)
	net := New(g)
	rel := relation.Transpose(64)
	det := net.Route(rel, RouteOptions{})
	val := net.Route(rel, RouteOptions{Valiant: true, Seed: 9})
	if det.Steps <= 0 || val.Steps <= 0 {
		t.Fatalf("det %d val %d", det.Steps, val.Steps)
	}
}

func TestSinglePortSlowerThanMultiPort(t *testing.T) {
	rng := stats.NewRNG(17)
	h := 8
	rel := relation.RandomRegular(rng, 32, h)
	multi := New(topology.Hypercube(32, true)).Route(rel, RouteOptions{})
	single := New(topology.Hypercube(32, false)).Route(rel, RouteOptions{})
	if single.Steps <= multi.Steps {
		t.Fatalf("single-port (%d) not slower than multi-port (%d)", single.Steps, multi.Steps)
	}
}

func TestRouteDeterministicGivenSeed(t *testing.T) {
	g := topology.Butterfly(3)
	net := New(g)
	rng := stats.NewRNG(23)
	rel := relation.RandomRegular(rng, g.P(), 2)
	a := net.Route(rel, RouteOptions{Valiant: true, Seed: 4})
	b := net.Route(rel, RouteOptions{Valiant: true, Seed: 4})
	if a != b {
		t.Fatalf("nondeterministic routing: %+v vs %+v", a, b)
	}
}

func TestMeasureGLMesh(t *testing.T) {
	g := topology.Array(4, 2, true)
	m := MeasureGL(g, []int{1, 2, 4, 8, 16}, 3, 99, false)
	if m.G <= 0 {
		t.Fatalf("fitted G = %v", m.G)
	}
	if m.R2 < 0.9 {
		t.Fatalf("fit R2 = %v too poor: %+v", m.R2, m.Points)
	}
	// On a 4x4 torus with p=16 and bisection 16, gamma is Theta(1)
	// to Theta(sqrt p); the fitted slope must be in a sane band.
	if m.G > 10 {
		t.Fatalf("fitted G = %v implausibly large", m.G)
	}
}

func TestMeasureGLOrdersTopologies(t *testing.T) {
	// The multi-port hypercube must show a smaller fitted slope than
	// the 2d mesh at comparable p (Table 1's gamma ordering).
	hs := []int{1, 2, 4, 8}
	hc := MeasureGL(topology.Hypercube(64, true), hs, 2, 1, false)
	mesh := MeasureGL(topology.Array(8, 2, false), hs, 2, 1, false)
	if hc.G >= mesh.G {
		t.Fatalf("hypercube slope %v not below mesh slope %v", hc.G, mesh.G)
	}
}

func TestLogPParamsSatisfyCapacityRequirement(t *testing.T) {
	m := Measurement{G: 2, L: 10}
	gs, ls := m.LogPParams()
	if gs != 4 || ls != 36 {
		t.Fatalf("G*, L* = %v, %v; want 4, 36", gs, ls)
	}
	// The defining requirement: a ceil(L*/G*)-relation must route
	// within L* under the fitted cost model gamma*h + delta.
	c := ls / gs
	if cost := m.G*c + m.L; cost > ls {
		t.Fatalf("capacity relation costs %v > L* = %v", cost, ls)
	}
	// L* = Theta(gamma + delta): both parameters positive and the
	// ratio to gamma+delta bounded.
	if ls < m.G+m.L || ls > 4*(m.G+m.L) {
		t.Fatalf("L* = %v not Theta(gamma+delta) = %v", ls, m.G+m.L)
	}
}

func TestLogPParamsEmpiricalRequirement(t *testing.T) {
	// End-to-end on a real topology: route a ceil(L*/G*)-relation
	// and verify it completes within about L*.
	g := topology.Hypercube(32, true)
	m := MeasureGL(g, []int{1, 2, 4, 8}, 3, 5, false)
	gs, ls := m.LogPParams()
	c := int(ls / gs)
	if c < 1 {
		c = 1
	}
	rng := stats.NewRNG(31)
	net := New(g)
	var worst int
	for trial := 0; trial < 3; trial++ {
		rel := relation.RandomRegular(rng, g.P(), c)
		if r := net.Route(rel, RouteOptions{Seed: rng.Uint64()}); r.Steps > worst {
			worst = r.Steps
		}
	}
	if float64(worst) > 2*ls {
		t.Fatalf("capacity relation took %d steps, far above L* = %v", worst, ls)
	}
}

func TestRoutePanicsOnWrongP(t *testing.T) {
	g := topology.Hypercube(8, true)
	net := New(g)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched relation")
		}
	}()
	net.Route(relation.Relation{P: 4}, RouteOptions{})
}

func TestStepperMatchesRoute(t *testing.T) {
	// The incremental Stepper and the batch Route must produce the
	// same completion step for the same injection pattern (everything
	// injected at step 0).
	graphs := []*topology.Graph{
		topology.Array(4, 2, true),
		topology.Hypercube(16, true),
		topology.Hypercube(16, false),
		topology.Butterfly(3),
		topology.MeshOfTrees(4),
	}
	rng := stats.NewRNG(41)
	for _, g := range graphs {
		net := New(g)
		for _, h := range []int{1, 2, 5} {
			rel := relation.RandomRegular(rng, g.P(), h)
			// Drop self-pairs: Route skips them for free, Inject
			// rejects them.
			var pairs []relation.Pair
			for _, pr := range rel.Pairs {
				if pr.Src != pr.Dst {
					pairs = append(pairs, pr)
				}
			}
			rel.Pairs = pairs
			want := net.Route(rel, RouteOptions{})

			st := net.NewStepper()
			for i, pr := range rel.Pairs {
				st.Inject(int64(i+1), pr.Src, pr.Dst)
			}
			var steps int64
			delivered := 0
			for st.Pending() > 0 {
				arr := st.Advance()
				delivered += len(arr)
				if len(arr) > 0 {
					steps = st.Step()
				}
				if st.Step() > int64(10*want.Steps+1000) {
					t.Fatalf("%s h=%d: stepper overran", g.Name, h)
				}
			}
			if delivered != len(rel.Pairs) {
				t.Fatalf("%s h=%d: stepper delivered %d of %d", g.Name, h, delivered, len(rel.Pairs))
			}
			if int(steps) != want.Steps {
				t.Fatalf("%s h=%d: stepper finished at %d, Route at %d", g.Name, h, steps, want.Steps)
			}
			if st.TotalHops != want.TotalHops {
				t.Fatalf("%s h=%d: hops %d vs %d", g.Name, h, st.TotalHops, want.TotalHops)
			}
		}
	}
}

func TestStepperInjectMidFlight(t *testing.T) {
	// Injections at later steps join the network smoothly.
	net := New(topology.Hypercube(8, true))
	st := net.NewStepper()
	st.Inject(1, 0, 7)
	st.Advance()
	st.Inject(2, 1, 6)
	total := 0
	for st.Pending() > 0 {
		total += len(st.Advance())
	}
	if total != 2 {
		t.Fatalf("delivered %d, want 2", total)
	}
}

func TestStepperSelfInjectPanics(t *testing.T) {
	net := New(topology.Hypercube(4, true))
	st := net.NewStepper()
	defer func() {
		if recover() == nil {
			t.Fatal("self-injection did not panic")
		}
	}()
	st.Inject(1, 2, 2)
}
