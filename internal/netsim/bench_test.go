package netsim

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/topology"
)

// benchRelation builds a fixed dense relation for the routing
// benchmarks, outside the timed region.
func benchRelation(g *topology.Graph, h int, seed uint64) relation.Relation {
	rng := stats.NewRNG(seed)
	return relation.RandomRegular(rng, g.P(), h)
}

// BenchmarkRoute measures one Route call on a reused Router — the hot
// path behind every MeasureGL trial. Steady-state allocations must be
// ~0: the rings, bitsets, and arrival buffer reach their high-water
// marks in the first iteration.
func BenchmarkRoute(b *testing.B) {
	for _, bc := range []struct {
		name string
		g    *topology.Graph
	}{
		{"hypercube-multi(64)", topology.Hypercube(64, true)},
		{"hypercube-single(64)", topology.Hypercube(64, false)},
		{"mesh(64)", topology.Array(8, 2, false)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			net := New(bc.g)
			rt := net.NewRouter()
			rel := benchRelation(bc.g, 8, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := rt.Route(rel, RouteOptions{Seed: uint64(i)})
				if r.Steps == 0 {
					b.Fatal("no routing happened")
				}
			}
		})
	}
}

// BenchmarkStepper measures draining an h-relation through the
// incremental Stepper, the co-simulation path of internal/netlogp.
func BenchmarkStepper(b *testing.B) {
	g := topology.Hypercube(64, false)
	net := New(g)
	rel := benchRelation(g, 8, 2)
	var pairs []relation.Pair
	for _, pr := range rel.Pairs {
		if pr.Src != pr.Dst {
			pairs = append(pairs, pr)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := net.NewStepper()
		for j, pr := range pairs {
			st.Inject(int64(j+1), pr.Src, pr.Dst)
		}
		for st.Pending() > 0 {
			st.Advance()
		}
	}
}

// BenchmarkMeasureGL times the full measurement pipeline of one E1
// row (network build, relation generation, routing, fitting).
func BenchmarkMeasureGL(b *testing.B) {
	g := topology.Hypercube(64, false)
	hs := []int{1, 2, 4, 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := MeasureGL(g, hs, 3, uint64(i+1), false)
		if m.G <= 0 {
			b.Fatal("degenerate fit")
		}
	}
}
