package netsim

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/topology"
)

// TestRouterReuseDeterministic verifies that a reused Router leaves no
// state behind: back-to-back runs of different relations must match
// fresh-Router runs exactly.
func TestRouterReuseDeterministic(t *testing.T) {
	for _, g := range goldenGraphs() {
		net := New(g)
		rt := net.NewRouter()
		rng := stats.NewRNG(13)
		for trial := 0; trial < 4; trial++ {
			rel := relation.RandomRegular(rng, g.P(), 1+trial)
			opts := RouteOptions{Valiant: trial%2 == 1, Seed: uint64(trial) + 3}
			got := rt.Route(rel, opts)
			want := net.NewRouter().Route(rel, opts)
			if got != want {
				t.Fatalf("%s trial %d: reused router %+v, fresh router %+v", g.Name, trial, got, want)
			}
		}
	}
}

// TestRouteMatchesStepperAllTopologies cross-checks the two simulator
// drivers on every topology: a Stepper driven to completion must
// report identical Steps, TotalHops, and MaxQueue to a batch Route of
// the same relation (all packets entering at step 0).
func TestRouteMatchesStepperAllTopologies(t *testing.T) {
	rng := stats.NewRNG(47)
	for _, g := range goldenGraphs() {
		net := New(g)
		for _, h := range []int{1, 2, 5} {
			rel := dropSelf(relation.RandomRegular(rng, g.P(), h))
			want := net.Route(rel, RouteOptions{})

			st := net.NewStepper()
			for i, pr := range rel.Pairs {
				st.Inject(int64(i+1), pr.Src, pr.Dst)
			}
			var steps int64
			delivered := 0
			for st.Pending() > 0 {
				arr := st.Advance()
				delivered += len(arr)
				if len(arr) > 0 {
					steps = st.Step()
				}
				if st.Step() > int64(10*want.Steps+1000) {
					t.Fatalf("%s h=%d: stepper overran", g.Name, h)
				}
			}
			if delivered != len(rel.Pairs) {
				t.Fatalf("%s h=%d: stepper delivered %d of %d", g.Name, h, delivered, len(rel.Pairs))
			}
			if int(steps) != want.Steps {
				t.Fatalf("%s h=%d: stepper finished at %d, Route at %d", g.Name, h, steps, want.Steps)
			}
			if st.TotalHops != want.TotalHops {
				t.Fatalf("%s h=%d: hops %d vs %d", g.Name, h, st.TotalHops, want.TotalHops)
			}
			if st.MaxQueue != want.MaxQueue {
				t.Fatalf("%s h=%d: max queue %d vs %d", g.Name, h, st.MaxQueue, want.MaxQueue)
			}
		}
	}
}

// TestMeasureGLParallelMatchesSequential is the determinism contract
// of the parallel measurement layer: any worker count produces the
// same Measurement, bit for bit, as a sequential run.
func TestMeasureGLParallelMatchesSequential(t *testing.T) {
	for _, g := range []*topology.Graph{
		topology.Hypercube(32, true),
		topology.Hypercube(32, false),
		topology.Array(4, 2, true),
	} {
		for _, valiant := range []bool{false, true} {
			hs := []int{1, 2, 4, 8}
			seq := New(g).measureGL(hs, 3, 9, valiant, 1)
			for _, workers := range []int{2, 4, 16} {
				par := New(g).measureGL(hs, 3, 9, valiant, workers)
				if seq.G != par.G || seq.L != par.L || seq.R2 != par.R2 || seq.PermTime != par.PermTime {
					t.Fatalf("%s valiant=%v workers=%d: parallel fit (%v,%v,%v,%v) != sequential (%v,%v,%v,%v)",
						g.Name, valiant, workers, par.G, par.L, par.R2, par.PermTime, seq.G, seq.L, seq.R2, seq.PermTime)
				}
				if len(par.Points) != len(seq.Points) {
					t.Fatalf("%s: point count %d vs %d", g.Name, len(par.Points), len(seq.Points))
				}
				for i := range par.Points {
					if par.Points[i] != seq.Points[i] {
						t.Fatalf("%s point %d: %v vs %v", g.Name, i, par.Points[i], seq.Points[i])
					}
				}
			}
		}
	}
}

// TestMeasureGLExportedMatchesSequential pins the exported entry point
// (GOMAXPROCS workers) to the sequential reference too.
func TestMeasureGLExportedMatchesSequential(t *testing.T) {
	g := topology.Hypercube(16, false)
	hs := []int{1, 2, 4}
	seq := New(g).measureGL(hs, 2, 21, false, 1)
	par := MeasureGL(g, hs, 2, 21, false)
	if seq.G != par.G || seq.L != par.L || seq.PermTime != par.PermTime {
		t.Fatalf("MeasureGL (%v,%v,%v) != sequential (%v,%v,%v)", par.G, par.L, par.PermTime, seq.G, seq.L, seq.PermTime)
	}
}

// TestPermTimeSmallestH: PermTime is the mean at the smallest h in
// the grid, independent of hs ordering, and never falls back to an
// arbitrary first entry.
func TestPermTimeSmallestH(t *testing.T) {
	g := topology.Hypercube(16, true)
	// Grid without h=1, deliberately unsorted: the smallest measured
	// h is 2.
	m := MeasureGL(g, []int{8, 2, 4}, 3, 5, false)
	ref := MeasureGL(g, []int{2}, 3, 5, false)
	if m.PermTime != ref.PermTime {
		t.Fatalf("PermTime %v, want the h=2 mean %v", m.PermTime, ref.PermTime)
	}
	// With h=1 present the value is the permutation time, matching a
	// 1-point measurement.
	m1 := MeasureGL(g, []int{4, 1, 8}, 3, 5, false)
	ref1 := MeasureGL(g, []int{1}, 3, 5, false)
	if m1.PermTime != ref1.PermTime {
		t.Fatalf("PermTime %v, want the h=1 mean %v", m1.PermTime, ref1.PermTime)
	}
}

// TestMeasureGLRejectsZeroTrials: misconfiguration panics with a
// netsim-prefixed message instead of dividing by zero.
func TestMeasureGLRejectsZeroTrials(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MeasureGL with 0 trials did not panic")
		}
	}()
	MeasureGL(topology.Hypercube(8, true), []int{1}, 0, 1, false)
}

// TestStepperInjectOutOfRangePanics: bad processor ids fail fast with
// a netsim-prefixed message, not an index panic deep in the tables.
func TestStepperInjectOutOfRangePanics(t *testing.T) {
	net := New(topology.Hypercube(8, true))
	for _, bad := range [][2]int{{-1, 3}, {8, 3}, {3, -1}, {3, 8}} {
		bad := bad
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("Inject(%d, %d) did not panic", bad[0], bad[1])
				}
				if msg, ok := r.(string); !ok || len(msg) < 7 || msg[:7] != "netsim:" {
					t.Fatalf("Inject(%d, %d) panic %v lacks netsim: prefix", bad[0], bad[1], r)
				}
			}()
			net.NewStepper().Inject(1, bad[0], bad[1])
		}()
	}
}

// TestRouteSteadyStateAllocFree asserts the tentpole property: once a
// Router's scratch has reached its high-water mark, further Route
// calls allocate nothing.
func TestRouteSteadyStateAllocFree(t *testing.T) {
	g := topology.Hypercube(64, false)
	net := New(g)
	rt := net.NewRouter()
	rel := benchRelation(g, 8, 3)
	// Warm up the rings and scratch buffers.
	rt.Route(rel, RouteOptions{Seed: 1})
	avg := testing.AllocsPerRun(20, func() {
		rt.Route(rel, RouteOptions{Seed: 2})
	})
	if avg > 0.5 {
		t.Fatalf("steady-state Route allocates %.1f objects per run, want ~0", avg)
	}
}
