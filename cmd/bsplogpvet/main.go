// Command bsplogpvet runs the repository's custom static-analysis suite
// over the given package patterns:
//
//	go run ./cmd/bsplogpvet ./...
//
// The suite mechanically enforces the simulators' determinism and
// model-discipline invariants (see internal/analysis). Output is one
// finding per line, vet-style, or a JSON array with -json; the exit
// status is 0 when the tree is clean, 1 when there are findings, and 2
// when the packages cannot be loaded — so CI can hard-fail on findings
// while a broken build stays distinguishable in the logs.
//
// Intentional exceptions are annotated in the source as
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the offending line or alone on the line above it. A directive
// without a reason, or naming an unknown analyzer, is itself a finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/kit"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bsplogpvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: bsplogpvet [-json] [-list] packages...\n\n")
		fmt.Fprintf(stderr, "Static analysis of the BSP/LogP simulators' determinism and\nmodel-discipline invariants. Exit status: 0 clean, 1 findings, 2 load error.\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := kit.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "bsplogpvet: %v\n", err)
		return 2
	}
	// allocdiscipline correlates the compiler's escape verdicts with the
	// hot set, so the load is followed by a -gcflags=-m capture (cheap:
	// the build cache replays the diagnostics).
	if err := kit.AttachEscapes(".", pkgs, patterns...); err != nil {
		fmt.Fprintf(stderr, "bsplogpvet: %v\n", err)
		return 2
	}
	diags := kit.RunAnalyzers(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []kit.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "bsplogpvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
