package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis/kit"
)

// chdir moves the test into dir and back at cleanup.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

// TestSmokeWholeRepo is the acceptance gate: the multichecker must run
// over every package of the repository without crashing and report a
// clean tree.
func TestSmokeWholeRepo(t *testing.T) {
	chdir(t, filepath.Join("..", ".."))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("bsplogpvet ./... = exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean tree printed findings:\n%s", stdout.String())
	}
}

// TestJSONCleanTree checks the -json contract CI greps: a clean run
// emits an empty JSON array and still exits 0.
func TestJSONCleanTree(t *testing.T) {
	chdir(t, filepath.Join("..", ".."))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, stderr.String())
	}
	var diags []kit.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 0 {
		t.Errorf("clean tree reported %d findings", len(diags))
	}
}

// TestList checks -list names every analyzer of the suite.
func TestList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, name := range []string{"determinism", "procshare", "apidiscipline", "costcharge", "allocdiscipline", "hotloop"} {
		if !bytes.Contains(stdout.Bytes(), []byte(name)) {
			t.Errorf("-list output is missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

// TestFindingsExitOne builds a throwaway module whose package path
// lands in the determinism scope, plants a wall-clock read, and checks
// the full contract end to end: exit 1 with the finding in JSON, then
// exit 0 once the line carries an annotated //lint:ignore exception.
func TestFindingsExitOne(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		full := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module repro\n\ngo 1.23\n")
	write("examples/clockly/main.go", `package main

import (
	"fmt"
	"time"
)

func main() {
	fmt.Println(time.Now())
}
`)
	chdir(t, dir)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	var diags []kit.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output: %v\n%s", err, stdout.String())
	}
	if len(diags) != 1 || diags[0].Analyzer != "determinism" {
		t.Fatalf("findings = %+v, want one determinism finding", diags)
	}

	// An annotated exception must silence exactly this finding — and
	// deleting the annotation later makes bsplogpvet report it again.
	write("examples/clockly/main.go", `package main

import (
	"fmt"
	"time"
)

func main() {
	//lint:ignore determinism demo exception with a reason
	fmt.Println(time.Now())
}
`)
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("annotated exception: exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

// TestLoadErrorExitTwo keeps "cannot load" distinguishable from "has
// findings" for CI logs.
func TestLoadErrorExitTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./no/such/package"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2\nstderr:\n%s", code, stderr.String())
	}
}
