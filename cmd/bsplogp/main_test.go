package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCLIList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	s := out.String()
	for _, id := range []string{"E1", "E5", "E10", "A6"} {
		if !strings.Contains(s, id) {
			t.Fatalf("list output missing %s:\n%s", id, s)
		}
	}
}

func TestCLISingleExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-experiment", "e6", "-quick"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "E6") || !strings.Contains(out.String(), "completed in") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestCLIUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-experiment", "E99"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Fatalf("stderr: %s", errOut.String())
	}
}

func TestCLINoArgs(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2 (usage)", code)
	}
}

func TestCLIBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestCLIBenchWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_logp.json")
	var out, errOut bytes.Buffer
	code := run([]string{"-bench", "-quick", "-experiment", "E6", "-benchout", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep struct {
		Quick   bool `json:"quick"`
		Results []struct {
			ID           string  `json:"id"`
			WallNanos    int64   `json:"wallNanos"`
			SimEvents    int64   `json:"simEvents"`
			EventsPerSec float64 `json:"eventsPerSec"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if !rep.Quick || len(rep.Results) != 1 || rep.Results[0].ID != "E6" {
		t.Fatalf("unexpected report: %+v", rep)
	}
	r := rep.Results[0]
	if r.WallNanos <= 0 || r.SimEvents <= 0 || r.EventsPerSec <= 0 {
		t.Fatalf("benchmark measurements not populated: %+v", r)
	}
	if !strings.Contains(out.String(), "events/sec") {
		t.Fatalf("summary table missing from output:\n%s", out.String())
	}
}

func TestCLIBenchUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-bench", "-experiment", "E99"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestCLIHelpExitsZero(t *testing.T) {
	// -h is a request for usage, not a parse error: exit 0, usage on
	// the flag set's output.
	for _, arg := range []string{"-h", "--help"} {
		var out, errOut bytes.Buffer
		if code := run([]string{arg}, &out, &errOut); code != 0 {
			t.Fatalf("%s: exit %d, want 0", arg, code)
		}
		if !strings.Contains(errOut.String(), "-experiment") {
			t.Fatalf("%s: usage text missing from output:\n%s", arg, errOut.String())
		}
	}
}

func TestCLIAuditWritesReportAndTrace(t *testing.T) {
	dir := t.TempDir()
	auditPath := filepath.Join(dir, "audit.json")
	tracePath := filepath.Join(dir, "trace.jsonl")
	var out, errOut bytes.Buffer
	code := run([]string{"-audit", "-quick", "-experiment", "e3",
		"-auditout", auditPath, "-trace", tracePath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "AUDIT") || !strings.Contains(out.String(), "all invariants held") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}

	data, err := os.ReadFile(auditPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		TotalRuns       int64 `json:"totalRuns"`
		TotalViolations int64 `json:"totalViolations"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.TotalRuns == 0 || rep.TotalViolations != 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}

	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(trace)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("empty trace file")
	}
	var ev struct {
		T    int64  `json:"t"`
		Kind string `json:"kind"`
		Seq  int64  `json:"seq"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("first trace line is not JSON: %v\n%s", err, lines[0])
	}
	if ev.Kind != "submit" {
		t.Fatalf("first event kind %q, want submit", ev.Kind)
	}
}

func TestCLIAuditUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-audit", "-experiment", "E99"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestCLIAuditFlagsWithoutAuditError(t *testing.T) {
	// -auditout and -trace are silently dead without -audit; that must
	// be a usage error, not ignored output the user asked for.
	for _, args := range [][]string{
		{"-trace", "t.jsonl", "-experiment", "E6", "-quick"},
		{"-auditout", "a.json", "-experiment", "E6", "-quick"},
		{"-trace", "t.jsonl", "-bench", "-experiment", "E6", "-quick"},
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Fatalf("%v: exit %d, want 2", args, code)
		}
		if !strings.Contains(errOut.String(), "without -audit") {
			t.Fatalf("%v: stderr missing diagnosis: %s", args, errOut.String())
		}
		if !strings.Contains(errOut.String(), "-experiment") {
			t.Fatalf("%v: usage text not printed: %s", args, errOut.String())
		}
	}
	// With -audit both flags are legitimate (covered in
	// TestCLIAuditWritesReportAndTrace); the default -auditout value
	// alone must not trip the check.
	var out, errOut bytes.Buffer
	if code := run([]string{"-experiment", "E6", "-quick"}, &out, &errOut); code != 0 {
		t.Fatalf("plain experiment run broken: exit %d: %s", code, errOut.String())
	}
}

func TestCLIParallelFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-experiment", "e6", "-quick", "-parallel", "4"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "E6") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}

	// The shard count must reach the benchmark config and be recorded
	// in the report schema.
	path := filepath.Join(t.TempDir(), "bench.json")
	out.Reset()
	errOut.Reset()
	code := run([]string{"-bench", "-quick", "-experiment", "E6", "-parallel", "4", "-benchout", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Shards int `json:"shards"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Shards != 4 {
		t.Fatalf("report shards = %d, want 4", rep.Shards)
	}
}

func TestCLIParallelMatchesSequentialOutput(t *testing.T) {
	// The experiment tables themselves must be bit-identical across
	// engines — -parallel is a wall-clock lever only.
	var seq, par, errOut bytes.Buffer
	if code := run([]string{"-experiment", "e3", "-quick"}, &seq, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if code := run([]string{"-experiment", "e3", "-quick", "-parallel", "4"}, &par, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	strip := func(s string) string {
		// Drop the wall-clock completion line, which legitimately varies.
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "completed in") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if strip(seq.String()) != strip(par.String()) {
		t.Fatalf("-parallel changed E3's table:\nsequential:\n%s\nparallel:\n%s", seq.String(), par.String())
	}
}

func TestCLIBenchSubsetMergePreservesRows(t *testing.T) {
	// A -bench run over a subset of the registry (here a single
	// -experiment) must extend the existing report, not replace it:
	// re-benchmarking E3 used to discard the E6 row wholesale.
	path := filepath.Join(t.TempDir(), "bench.json")
	var out, errOut bytes.Buffer
	if code := run([]string{"-bench", "-quick", "-experiment", "E6", "-benchout", path}, &out, &errOut); code != 0 {
		t.Fatalf("seeding run: exit %d: %s", code, errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-bench", "-quick", "-experiment", "E3", "-benchout", path}, &out, &errOut); code != 0 {
		t.Fatalf("subset run: exit %d: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		TotalWallNanos int64 `json:"totalWallNanos"`
		Results        []struct {
			ID        string `json:"id"`
			WallNanos int64  `json:"wallNanos"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("merged report is not valid JSON: %v\n%s", err, data)
	}
	ids := map[string]bool{}
	var sum int64
	for _, r := range rep.Results {
		ids[r.ID] = true
		sum += r.WallNanos
	}
	if !ids["E6"] || !ids["E3"] {
		t.Fatalf("subset -bench run clobbered the report: rows %v, want E6 and E3", ids)
	}
	if rep.TotalWallNanos != sum {
		t.Fatalf("totalWallNanos %d not recomputed over merged rows (sum %d)", rep.TotalWallNanos, sum)
	}
}

func TestCLIBenchCorruptBaseReportFails(t *testing.T) {
	// An unreadable existing -benchout must be a hard error before any
	// benchmarking starts, not rows silently discarded after the run.
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-bench", "-quick", "-experiment", "E6", "-benchout", path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "unreadable") {
		t.Fatalf("stderr missing diagnosis: %s", errOut.String())
	}
	// The corrupt file must be left untouched for the user to inspect.
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "{not json" {
		t.Fatalf("corrupt base was modified: %q, %v", data, err)
	}
}

func TestCLIModeFlagMisuse(t *testing.T) {
	// Flags that only mean something under a mode flag are usage errors
	// (exit 2) without it, mirroring the -audit flag discipline.
	cases := []struct {
		args []string
		diag string
	}{
		{[]string{"-benchout", "b.json", "-experiment", "E6", "-quick"}, "without -bench"},
		{[]string{"-benchcount", "3", "-experiment", "E6", "-quick"}, "without -bench"},
		{[]string{"-cpuprofile", "cpu.pprof", "-experiment", "E6", "-quick"}, "without -bench"},
		{[]string{"-memprofile", "mem.pprof", "-experiment", "E6", "-quick"}, "without -bench"},
		{[]string{"-threshold", "0.5", "-experiment", "E6", "-quick"}, "without -benchdiff"},
		{[]string{"-threshold", "0.5", "-bench", "-experiment", "E6", "-quick"}, "without -benchdiff"},
		{[]string{"-addr", "http://x", "-experiment", "E6", "-quick"}, "without -loadtest"},
		{[]string{"-clients", "2", "-experiment", "E6", "-quick"}, "without -loadtest"},
		{[]string{"-jobsper", "2", "-experiment", "E6", "-quick"}, "without -loadtest"},
		{[]string{"-serveout", "s.json", "-experiment", "E6", "-quick"}, "without -loadtest"},
		{[]string{"-workers", "2", "-experiment", "E6", "-quick"}, "without -serve or -loadtest"},
	}
	for _, tc := range cases {
		var out, errOut bytes.Buffer
		if code := run(tc.args, &out, &errOut); code != 2 {
			t.Fatalf("%v: exit %d, want 2: %s", tc.args, code, errOut.String())
		}
		if !strings.Contains(errOut.String(), tc.diag) {
			t.Fatalf("%v: stderr missing %q: %s", tc.args, tc.diag, errOut.String())
		}
	}
	// The flags are legitimate under their mode; default values alone
	// must never trip the check.
	path := filepath.Join(t.TempDir(), "bench.json")
	var out, errOut bytes.Buffer
	if code := run([]string{"-bench", "-quick", "-experiment", "E6", "-benchout", path, "-benchcount", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("bench flags under -bench broken: exit %d: %s", code, errOut.String())
	}
}

func TestCLILoadTestWritesReport(t *testing.T) {
	// A small in-process load run: 2 clients x 2 jobs against E6. Must
	// exit 0, print the SERVE table, and write a well-formed report.
	path := filepath.Join(t.TempDir(), "serve.json")
	var out, errOut bytes.Buffer
	code := run([]string{"-loadtest", "-clients", "2", "-jobsper", "2",
		"-experiment", "E6", "-quick", "-workers", "2", "-serveout", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "SERVE") || !strings.Contains(out.String(), "jobs/sec") {
		t.Fatalf("summary table missing from output:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep struct {
		Addr          string `json:"addr"`
		TotalJobs     int    `json:"totalJobs"`
		Failures      int    `json:"failures"`
		Deterministic bool   `json:"deterministic"`
		P50Nanos      int64  `json:"p50Nanos"`
		P99Nanos      int64  `json:"p99Nanos"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if rep.Addr != "in-process" || rep.TotalJobs != 4 || rep.Failures != 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if !rep.Deterministic {
		t.Fatal("same-seed jobs returned differing bodies")
	}
	if rep.P50Nanos <= 0 || rep.P99Nanos < rep.P50Nanos {
		t.Fatalf("latency percentiles not populated: %+v", rep)
	}
}

func TestCLIServeBadAddr(t *testing.T) {
	// An unbindable -serve address must surface as exit 1, not a hang.
	var out, errOut bytes.Buffer
	if code := run([]string{"-serve", "256.256.256.256:0"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1: %s", code, errOut.String())
	}
}
