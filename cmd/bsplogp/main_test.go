package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestCLIList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	s := out.String()
	for _, id := range []string{"E1", "E5", "E10", "A6"} {
		if !strings.Contains(s, id) {
			t.Fatalf("list output missing %s:\n%s", id, s)
		}
	}
}

func TestCLISingleExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-experiment", "e6", "-quick"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "E6") || !strings.Contains(out.String(), "completed in") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestCLIUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-experiment", "E99"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Fatalf("stderr: %s", errOut.String())
	}
}

func TestCLINoArgs(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2 (usage)", code)
	}
}

func TestCLIBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
