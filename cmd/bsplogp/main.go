// Command bsplogp regenerates the quantitative results of "BSP vs
// LogP" (Bilardi, Herley, Pietracaprina, Pucci, Spirakis; SPAA 1996 /
// Algorithmica 1999) on the executable BSP and LogP machines in this
// repository.
//
// Usage:
//
//	bsplogp -list [-scale]
//	bsplogp -experiment E3 [-quick] [-seed 1] [-parallel 4]
//	bsplogp -all [-quick]
//	bsplogp -scale [-quick] [-bench]
//	bsplogp -bench [-experiment E3] [-quick] [-parallel 4] [-benchcount 5] [-benchout BENCH_logp.json] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	bsplogp -benchdiff old.json new.json [-threshold 0.2]
//	bsplogp -audit [-experiment E3] [-quick] [-parallel 4] [-auditout AUDIT_logp.json] [-trace trace.jsonl]
//	bsplogp -serve :8080 [-workers 4]
//	bsplogp -loadtest [-addr http://host:8080] [-clients 8] [-jobsper 4] [-experiment E3] [-quick] [-serveout SERVE_logp.json]
//
// -parallel shards the LogP engines across worker goroutines; every
// table, trace, and audit report stays byte-identical to the
// sequential engine, so it is purely a wall-clock lever.
//
// -serve runs bsplogp as a persistent simulation server: a JSON job
// API (POST /jobs, GET /jobs/{job}/result, ...) over a warm worker
// pool; see internal/serve. -loadtest drives a server (an in-process
// one when -addr is empty) with N concurrent clients × M jobs and
// writes the p50/p99 job-latency report to SERVE_logp.json.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/logp"
	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI body; it returns the process exit code.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("bsplogp", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		id         = fs.String("experiment", "", "experiment id to run (E1..E13, A1..A6, or a scale id like E14.p1m); empty with -all runs everything")
		all        = fs.Bool("all", false, "run every experiment")
		list       = fs.Bool("list", false, "list experiments and exit")
		quick      = fs.Bool("quick", false, "shrink processor counts and trials")
		scale      = fs.Bool("scale", false, "select the large-p scale experiments (E14/E15/E16 at p=10^4..10^6, E17 at p=1024/2048) instead of the regular suite; with -quick the p=10^6 entries are skipped and the rest run at p=10^5")
		seed       = fs.Uint64("seed", 1, "random seed")
		parallel   = fs.Int("parallel", 0, "run the LogP engines on this many conservative-parallel shards (>= 2; 0 or 1 keeps the sequential engine); tables, traces, and audit reports are byte-identical either way")
		doBench    = fs.Bool("bench", false, "benchmark experiments (all, or the one given by -experiment) and write a JSON report")
		benchOut   = fs.String("benchout", "BENCH_logp.json", "path of the JSON report written by -bench")
		benchCount = fs.Int("benchcount", 1, "with -bench: repetitions per experiment; the report carries the median wall time")
		cpuProfile = fs.String("cpuprofile", "", "with -bench: write a CPU profile of the benchmark runs to this file")
		memProfile = fs.String("memprofile", "", "with -bench: write an allocation profile taken after the benchmark runs to this file")
		benchDiff  = fs.Bool("benchdiff", false, "compare two -bench JSON reports given as positional args (old.json new.json); nonzero exit if any experiment regresses past -threshold")
		threshold  = fs.Float64("threshold", 0.2, "with -benchdiff: tolerated fractional wall-time regression; negative disables the nonzero exit (informational)")
		doAudit    = fs.Bool("audit", false, "run experiments (all, or the one given by -experiment) under the streaming LogP invariant auditor; nonzero exit on any violation")
		auditOut   = fs.String("auditout", "AUDIT_logp.json", "path of the JSON report written by -audit")
		traceOut   = fs.String("trace", "", "with -audit: also write every audited event to this JSONL file")
		serveAddr  = fs.String("serve", "", "run as a persistent simulation server on this address (e.g. :8080); drains gracefully on SIGINT/SIGTERM")
		workers    = fs.Int("workers", 0, "with -serve or -loadtest: worker pool size (0 = GOMAXPROCS); each worker keeps a warm cache of simulators")
		loadTest   = fs.Bool("loadtest", false, "drive a simulation server with concurrent clients and write a job-latency report")
		loadAddr   = fs.String("addr", "", "with -loadtest: base URL of a running server (empty starts an in-process one)")
		clients    = fs.Int("clients", 8, "with -loadtest: number of concurrent clients")
		jobsPer    = fs.Int("jobsper", 4, "with -loadtest: jobs each client submits sequentially")
		serveOut   = fs.String("serveout", "SERVE_logp.json", "path of the JSON report written by -loadtest")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	// Flags that only mean something under a mode flag are usage errors
	// without it; silently ignoring them would discard output (or
	// profiles, or thresholds) the user asked for.
	needs := map[string]struct {
		on   bool
		mode string
	}{
		"auditout":   {*doAudit, "-audit"},
		"trace":      {*doAudit, "-audit"},
		"benchout":   {*doBench, "-bench"},
		"benchcount": {*doBench, "-bench"},
		"cpuprofile": {*doBench, "-bench"},
		"memprofile": {*doBench, "-bench"},
		"threshold":  {*benchDiff, "-benchdiff"},
		"addr":       {*loadTest, "-loadtest"},
		"clients":    {*loadTest, "-loadtest"},
		"jobsper":    {*loadTest, "-loadtest"},
		"serveout":   {*loadTest, "-loadtest"},
		"workers":    {*serveAddr != "" || *loadTest, "-serve or -loadtest"},
	}
	misused := false
	fs.Visit(func(f *flag.Flag) {
		if dep, ok := needs[f.Name]; ok && !dep.on {
			fmt.Fprintf(errOut, "bsplogp: -%s has no effect without %s\n", f.Name, dep.mode)
			misused = true
		}
	})
	if misused {
		fs.Usage()
		return 2
	}

	if *serveAddr != "" {
		if err := serve.ListenAndServe(*serveAddr, *workers, 0, out); err != nil {
			fmt.Fprintf(errOut, "bsplogp: %v\n", err)
			return 1
		}
		return 0
	}

	if *loadTest {
		rep, err := serve.RunLoad(serve.LoadOptions{
			Addr:          *loadAddr,
			Workers:       *workers,
			Clients:       *clients,
			JobsPerClient: *jobsPer,
			Experiment:    *id,
			Quick:         *quick,
			Seed:          *seed,
			Shards:        *parallel,
		})
		if err != nil {
			fmt.Fprintf(errOut, "bsplogp: %v\n", err)
			return 1
		}
		fmt.Fprintln(out, rep.Render())
		if err := rep.WriteJSON(*serveOut); err != nil {
			fmt.Fprintf(errOut, "bsplogp: writing report: %v\n", err)
			return 1
		}
		fmt.Fprintf(out, "report written to %s\n", *serveOut)
		if rep.Failures > 0 {
			fmt.Fprintf(errOut, "bsplogp: %d of %d jobs failed\n", rep.Failures, rep.TotalJobs)
			return 1
		}
		if !rep.Deterministic {
			fmt.Fprintln(errOut, "bsplogp: determinism violation: same-seed jobs returned differing bodies")
			return 1
		}
		return 0
	}

	if *list {
		exps := bench.All()
		if *scale {
			exps = bench.Scale()
		}
		for _, e := range exps {
			fmt.Fprintf(out, "%-9s %s\n", e.ID, e.Name)
		}
		return 0
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed, Shards: *parallel}

	// The p=10^6 experiments keep ~2 GB of guest state live; the default
	// GC target (100% headroom) would push peak RSS past the scale
	// suite's 4 GB budget, so trade GC frequency for footprint. The
	// simulation is unaffected — GC timing never reaches the engines.
	if *scale {
		debug.SetGCPercent(50)
	}

	// The scale registry's default selection: everything, or under
	// -quick only the entries whose processor count fits a smoke run.
	scaleIDs := func() []string {
		var ids []string
		for _, e := range bench.Scale() {
			if *quick && e.Procs > 100_000 {
				continue
			}
			ids = append(ids, e.ID)
		}
		return ids
	}

	if *benchDiff {
		paths := fs.Args()
		if len(paths) != 2 {
			fmt.Fprintln(errOut, "bsplogp: -benchdiff needs exactly two positional args: old.json new.json")
			return 2
		}
		oldRep, err := bench.ReadJSON(paths[0])
		if err != nil {
			fmt.Fprintf(errOut, "bsplogp: %v\n", err)
			return 2
		}
		newRep, err := bench.ReadJSON(paths[1])
		if err != nil {
			fmt.Fprintf(errOut, "bsplogp: %v\n", err)
			return 2
		}
		d := bench.Diff(oldRep, newRep, *threshold)
		fmt.Fprintln(out, d.Render())
		if d.Regressed {
			fmt.Fprintf(errOut, "bsplogp: benchmark regression past threshold %.2f\n", *threshold)
			return 1
		}
		return 0
	}

	if *doAudit {
		var ids []string
		if *id != "" {
			ids = []string{*id}
		}
		var sink func(logp.Event)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(errOut, "bsplogp: %v\n", err)
				return 1
			}
			w := bufio.NewWriter(f)
			var mu sync.Mutex // machines may run on concurrent goroutines
			sink = func(ev logp.Event) {
				mu.Lock()
				fmt.Fprintf(w, `{"t":%d,"kind":%q,"seq":%d,"src":%d,"dst":%d,"tag":%d,"payload":%d,"aux":%d}`+"\n",
					ev.Time, ev.Kind.String(), ev.Seq, ev.Msg.Src, ev.Msg.Dst, ev.Msg.Tag, ev.Msg.Payload, ev.Msg.Aux)
				mu.Unlock()
			}
			defer func() {
				w.Flush()
				f.Close()
			}()
		}
		rep, err := bench.RunAudit(cfg, ids, sink)
		if err != nil {
			fmt.Fprintf(errOut, "bsplogp: %v; use -list\n", err)
			return 2
		}
		fmt.Fprintln(out, rep.Render())
		if err := rep.WriteJSON(*auditOut); err != nil {
			fmt.Fprintf(errOut, "bsplogp: writing report: %v\n", err)
			return 1
		}
		fmt.Fprintf(out, "report written to %s\n", *auditOut)
		if *traceOut != "" {
			fmt.Fprintf(out, "trace written to %s\n", *traceOut)
		}
		if rep.TotalViolations > 0 {
			fmt.Fprintf(errOut, "bsplogp: %d invariant violations\n", rep.TotalViolations)
			return 1
		}
		return 0
	}

	if *doBench {
		var ids []string
		if *id != "" {
			ids = []string{*id}
		} else if *scale {
			ids = scaleIDs()
		}
		// Every -bench run covers a subset of the registry (a single
		// -experiment, the -scale suite, or the regular suite without
		// the scale rows), so an existing report is always extended,
		// never clobbered. Read it before the runs: a missing file is a
		// fresh report, but a corrupt one is an error now rather than
		// rows silently dropped after minutes of benchmarking.
		base, baseErr := bench.ReadJSON(*benchOut)
		if baseErr != nil {
			if !errors.Is(baseErr, os.ErrNotExist) {
				fmt.Fprintf(errOut, "bsplogp: existing report %s is unreadable: %v\n", *benchOut, baseErr)
				fmt.Fprintln(errOut, "bsplogp: move it aside (or fix it) so benchmark rows are not silently discarded")
				return 1
			}
			base = nil
		}
		if *cpuProfile != "" {
			f, err := os.Create(*cpuProfile)
			if err != nil {
				fmt.Fprintf(errOut, "bsplogp: %v\n", err)
				return 1
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				fmt.Fprintf(errOut, "bsplogp: starting CPU profile: %v\n", err)
				f.Close()
				return 1
			}
			defer func() {
				pprof.StopCPUProfile()
				f.Close()
			}()
		}
		rep, err := bench.RunBench(cfg, ids, *benchCount)
		if err != nil {
			fmt.Fprintf(errOut, "bsplogp: %v; use -list\n", err)
			return 2
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(errOut, "bsplogp: %v\n", err)
				return 1
			}
			runtime.GC() // flush allocation records so the profile covers the whole run
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(errOut, "bsplogp: writing heap profile: %v\n", err)
				f.Close()
				return 1
			}
			f.Close()
		}
		fmt.Fprintln(out, rep.Render())
		if base != nil {
			rep = bench.MergeReports(base, rep)
		}
		if err := rep.WriteJSON(*benchOut); err != nil {
			fmt.Fprintf(errOut, "bsplogp: writing report: %v\n", err)
			return 1
		}
		fmt.Fprintf(out, "report written to %s\n", *benchOut)
		return 0
	}

	runOne := func(e bench.Experiment) {
		start := time.Now()
		tab := e.Run(cfg)
		fmt.Fprintln(out, tab.Render())
		fmt.Fprintf(out, "(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	switch {
	case *all:
		for _, e := range bench.All() {
			runOne(e)
		}
	// -experiment before -scale, matching -bench: "-scale -experiment
	// E16.p1m" runs the one experiment (with the scale-mode GC tuning
	// above), not the whole suite.
	case *id != "":
		e, ok := bench.Lookup(*id)
		if !ok {
			fmt.Fprintf(errOut, "bsplogp: unknown experiment %q; use -list\n", *id)
			return 2
		}
		runOne(e)
	case *scale:
		for _, sid := range scaleIDs() {
			e, _ := bench.Lookup(sid)
			runOne(e)
		}
	default:
		fs.Usage()
		return 2
	}
	return 0
}
