package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/bsp"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/logp"
	"repro/internal/relation"
	"repro/internal/stats"
)

// One benchmark per reproduced table/figure (see DESIGN.md's
// per-experiment index). Each iteration regenerates the experiment's
// full table; the reported ns/op is the cost of reproducing it.

func benchExperiment(b *testing.B, id string) {
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := bench.Config{Quick: testing.Short(), Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := e.Run(cfg)
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- Engine microbenchmarks ----------------------------------------------

// benchEngine measures the LogP discrete-event core itself on one
// machine reused across iterations (the scheduler heap, slot bitsets,
// and scratch buffers amortize, so allocs/op isolates the per-run
// cost). It reports simulated events per second of wall time.
func benchEngine(b *testing.B, lp logp.Params, prog logp.Program, opts ...logp.Option) {
	b.Helper()
	m := logp.NewMachine(lp, opts...)
	ev0 := logp.SimEventCount()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if el := b.Elapsed().Seconds(); el > 0 {
		b.ReportMetric(float64(logp.SimEventCount()-ev0)/el, "events/sec")
	}
}

// BenchmarkEngineRing is the stall-free pipelined ring: pure scheduler
// and event-heap traffic, one message in flight per processor pair.
func BenchmarkEngineRing(b *testing.B) {
	lp := logp.Params{P: 64, L: 32, O: 2, G: 4}
	benchEngine(b, lp, func(p logp.Proc) {
		n := p.P()
		for k := 0; k < 16; k++ {
			p.Send((p.ID()+1)%n, 0, int64(k), 0)
		}
		for k := 0; k < 16; k++ {
			p.Recv()
		}
	})
}

// BenchmarkEngineHotspot drives the Stalling Rule: every processor
// floods the last one, exercising pending queues, accept passes, and
// the slot window under contention.
func BenchmarkEngineHotspot(b *testing.B) {
	lp := logp.Params{P: 64, L: 8, O: 1, G: 4}
	benchEngine(b, lp, func(p logp.Proc) {
		hot := p.P() - 1
		if p.ID() != hot {
			for k := 0; k < 4; k++ {
				p.Send(hot, 0, int64(k), 0)
			}
			return
		}
		for i := 0; i < (p.P()-1)*4; i++ {
			p.Recv()
		}
	}, logp.WithDeliveryPolicy(logp.DeliverMinLatency))
}

// BenchmarkEngineRandomTraffic stresses the DeliverRandom reservoir
// scan over the slot bitset together with random acceptance order.
func BenchmarkEngineRandomTraffic(b *testing.B) {
	lp := logp.Params{P: 64, L: 32, O: 2, G: 4}
	benchEngine(b, lp, func(p logp.Proc) {
		n := p.P()
		for k := 1; k <= 8; k++ {
			p.Send((p.ID()+k*7)%n, 0, int64(k), 0)
		}
		for k := 1; k <= 8; k++ {
			p.Recv()
		}
	}, logp.WithDeliveryPolicy(logp.DeliverRandom), logp.WithAcceptOrder(logp.AcceptRandom), logp.WithSeed(3))
}

func BenchmarkE1Table1(b *testing.B)           { benchExperiment(b, "E1") }
func BenchmarkE2LogPOnBSP(b *testing.B)        { benchExperiment(b, "E2") }
func BenchmarkE3BSPOnLogPDet(b *testing.B)     { benchExperiment(b, "E3") }
func BenchmarkE4BSPOnLogPRand(b *testing.B)    { benchExperiment(b, "E4") }
func BenchmarkE5CombineBroadcast(b *testing.B) { benchExperiment(b, "E5") }
func BenchmarkE6Stalling(b *testing.B)         { benchExperiment(b, "E6") }
func BenchmarkE7Observation1(b *testing.B)     { benchExperiment(b, "E7") }
func BenchmarkE8Offline(b *testing.B)          { benchExperiment(b, "E8") }

// --- Ablations of the design choices DESIGN.md calls out -----------------

// BenchmarkAblationDeliveryPolicy quantifies how the admissible-
// execution choice (Theorem 1's nondeterminism) moves measured LogP
// times for a latency-sensitive collective.
func BenchmarkAblationDeliveryPolicy(b *testing.B) {
	lp := logp.Params{P: 64, L: 32, O: 2, G: 4}
	prog := func(p logp.Proc) {
		mb := collective.NewMailbox(p)
		collective.CombineBroadcast(mb, 1, int64(p.ID()), collective.OpSum)
	}
	for _, pol := range []logp.DeliveryPolicy{logp.DeliverMaxLatency, logp.DeliverMinLatency, logp.DeliverRandom} {
		b.Run(pol.String(), func(b *testing.B) {
			m := logp.NewMachine(lp, logp.WithDeliveryPolicy(pol), logp.WithSeed(1))
			var last int64
			for i := 0; i < b.N; i++ {
				res, err := m.Run(prog)
				if err != nil {
					b.Fatal(err)
				}
				last = res.Time
			}
			b.ReportMetric(float64(last), "logp-time")
		})
	}
}

// BenchmarkAblationCBArity sweeps the CB tree fan-in around the
// paper's choice max(2, ceil(L/G)), exposing the log(1+C) denominator
// of Proposition 2.
func BenchmarkAblationCBArity(b *testing.B) {
	lp := logp.Params{P: 256, L: 32, O: 1, G: 2} // capacity 16
	for _, arity := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("arity-%d", arity), func(b *testing.B) {
			m := logp.NewMachine(lp, logp.WithSeed(1))
			var last int64
			for i := 0; i < b.N; i++ {
				res, err := m.Run(func(p logp.Proc) {
					mb := collective.NewMailbox(p)
					collective.CombineBroadcastArity(mb, 1, int64(p.ID()), collective.OpMax, arity)
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res.Time
			}
			b.ReportMetric(float64(last), "logp-time")
		})
	}
}

// BenchmarkAblationBatchFactor sweeps Theorem 3's batch inflation
// (1+beta): smaller beta risks stalling, larger beta wastes rounds.
func BenchmarkAblationBatchFactor(b *testing.B) {
	lp := logp.Params{P: 64, L: 16, O: 1, G: 2}
	rng := stats.NewRNG(5)
	rel := relation.RandomRegular(rng, lp.P, 32)
	prog := relationBench(rel)
	for _, beta := range []float64{0.25, 0.5, 1, 2, 4} {
		b.Run(fmt.Sprintf("beta-%.2f", beta), func(b *testing.B) {
			var hostT, stalls int64
			for i := 0; i < b.N; i++ {
				sim := &core.BSPOnLogP{LogP: lp, Router: core.RouterRandomized, Seed: uint64(i + 1), Beta: beta}
				res, err := sim.Run(prog)
				if err != nil {
					b.Fatal(err)
				}
				hostT = res.HostTime
				stalls += res.Host.StallEvents
			}
			b.ReportMetric(float64(hostT), "logp-time")
			b.ReportMetric(float64(stalls)/float64(b.N), "stalls/run")
		})
	}
}

// BenchmarkAblationRouter compares the three Theorem 2/3 routers on
// the same workload (the sorter ablation: oblivious-sorting
// deterministic vs randomized batches vs off-line decomposition).
func BenchmarkAblationRouter(b *testing.B) {
	lp := logp.Params{P: 32, L: 16, O: 1, G: 2}
	rng := stats.NewRNG(9)
	rel := relation.RandomRegular(rng, lp.P, 16)
	prog := relationBench(rel)
	for _, router := range []core.Router{core.RouterDeterministic, core.RouterRandomized, core.RouterOffline} {
		b.Run(router.String(), func(b *testing.B) {
			var hostT int64
			for i := 0; i < b.N; i++ {
				sim := &core.BSPOnLogP{LogP: lp, Router: router, Seed: 3}
				res, err := sim.Run(prog)
				if err != nil {
					b.Fatal(err)
				}
				hostT = res.HostTime
			}
			b.ReportMetric(float64(hostT), "logp-time")
		})
	}
}

// BenchmarkAblationCycleLen sweeps Theorem 1's cycle length around the
// paper's L/2.
func BenchmarkAblationCycleLen(b *testing.B) {
	lp := logp.Params{P: 32, L: 32, O: 2, G: 4}
	prog := func(p logp.Proc) {
		mb := collective.NewMailbox(p)
		collective.CombineBroadcast(mb, 1, int64(p.ID()), collective.OpSum)
	}
	for _, div := range []int64{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("L-over-%d", div), func(b *testing.B) {
			var bspT int64
			for i := 0; i < b.N; i++ {
				sim := &core.LogPOnBSP{LogP: lp, CycleLen: lp.L / div}
				res, err := sim.Run(prog)
				if err != nil {
					b.Fatal(err)
				}
				bspT = res.BSPTime
			}
			b.ReportMetric(float64(bspT), "bsp-time")
		})
	}
}

func relationBench(rel relation.Relation) bsp.Program {
	bySrc := rel.BySource()
	return func(p bsp.Proc) {
		for _, pr := range bySrc[p.ID()] {
			p.Send(pr.Dst, 0, 1, 0)
		}
		p.Sync()
		for {
			if _, ok := p.Recv(); !ok {
				break
			}
		}
	}
}

func BenchmarkE9RadixSkew(b *testing.B)    { benchExperiment(b, "E9") }
func BenchmarkE10Portability(b *testing.B) { benchExperiment(b, "E10") }

func BenchmarkAblationAcceptOrder(b *testing.B) { benchExperiment(b, "A6") }

func BenchmarkE11Partitionability(b *testing.B)     { benchExperiment(b, "E11") }
func BenchmarkE12ParameterPortability(b *testing.B) { benchExperiment(b, "E12") }

func BenchmarkE13LogPOnNetworks(b *testing.B) { benchExperiment(b, "E13") }
