# Convenience targets for the BSP-vs-LogP reproduction.

GO ?= go

.PHONY: all test lint race fuzz golden-parallel audit audit-report bench bench-smoke bench-netsim bench-report bench-diff bench-scale bench-scale-report serve-smoke serve-report experiments examples cover clean

all: test

test:
	$(GO) vet ./...
	$(GO) test ./...

# Static analysis: go vet plus the project's own go/analysis suite
# (determinism, procshare, apidiscipline, costcharge, and the
# allocation-discipline pair allocdiscipline + hotloop, which correlate
# the compiler's own escape verdicts from `go build -gcflags=-m` with
# the //hot:path-annotated hot set — see DESIGN.md), and a gofmt check.
# bsplogpvet exits 1 on any finding.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/bsplogpvet ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi

race:
	$(GO) test -race ./...

# Three-way differential fuzzing of the LogP engines: the fast path is
# the baseline, the WithSlowPath oracle and the sharded parallel
# scheduler (WithShards) must both produce identical Results, traces,
# and audit metrics.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzFastPathEquivalence -fuzztime 20s ./internal/logp/

# Byte-identity of the sharded conservative-parallel engine: golden and
# differential suites under the race detector, repeated across
# GOMAXPROCS settings.
golden-parallel:
	$(GO) test -race -run 'Parallel|Sharded|DeliveryWindow' ./internal/logp/ ./internal/core/ ./internal/bench/
	for gmp in 1 2 8; do \
		GOMAXPROCS=$$gmp $(GO) test -count=1 -run 'Parallel|Sharded' ./internal/logp/ ./internal/core/ ./internal/bench/ || exit 1; \
	done

# Run the quick experiment suite under the streaming LogP invariant
# auditor; fails on any model-invariant violation (see EXPERIMENTS.md).
audit:
	$(GO) run ./cmd/bsplogp -all -quick -audit -auditout /tmp/AUDIT_logp.json

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: catches benchmarks that no longer
# compile or crash, without CI-length timings.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Microbenchmarks of the packet-network simulator hot path (Route,
# Stepper, MeasureGL). BenchmarkRoute must stay at ~0 allocs/op in
# steady state; use a long -benchtime so ring warm-up amortizes away.
bench-netsim:
	$(GO) test -run '^$$' -bench 'BenchmarkRoute|BenchmarkStepper|BenchmarkMeasureGL' -benchtime 1000x -benchmem ./internal/netsim/

# Regenerate the checked-in BENCH_logp.json (see EXPERIMENTS.md).
# Median of 5 repetitions smooths scheduler noise out of the report.
bench-report:
	$(GO) run ./cmd/bsplogp -bench -quick -benchcount 5 -benchout BENCH_logp.json

# Compare a fresh benchmark run against the checked-in report; exits
# nonzero when any experiment's wall time regresses more than 20%.
bench-diff:
	$(GO) run ./cmd/bsplogp -bench -quick -benchcount 3 -benchout /tmp/BENCH_new.json
	$(GO) run ./cmd/bsplogp -benchdiff BENCH_logp.json /tmp/BENCH_new.json

# Smoke the large-p scale experiments (E14/E15/E16): -quick skips the
# p=10^6 entries and runs the rest at p=10^5, a few seconds of wall
# time — the CI guard that the O(active) engines stay live. The alloc
# guards run first: they pin warm steady-state allocations per Run
# (sequential 1, cycle engine 1, sharded/E16 small documented
# constants), so an arena or slab-reuse regression fails here before
# it shows up as a bytes/proc drift in BENCH_logp.json.
bench-scale:
	$(GO) test -run 'SteadyStateAlloc|TestArena' ./internal/logp/ ./internal/core/ ./internal/bench/
	$(GO) run ./cmd/bsplogp -scale -quick

# Full scale run at p up to 10^6, merging events/sec and bytes/proc
# rows into the checked-in BENCH_logp.json (see EXPERIMENTS.md).
# benchcount 2 makes the reported medians describe a warm repetition:
# the second rep reuses the pooled machines and arenas, so bytes/proc
# measures the steady state the alloc guards pin, not construction.
bench-scale-report:
	$(GO) run ./cmd/bsplogp -scale -bench -benchcount 2 -benchout BENCH_logp.json

# Smoke the service mode: the serve test suite under the race detector
# (>= 8 concurrent clients, byte-identical bodies), then a small
# in-process load run. Exits nonzero on any job failure or determinism
# violation.
serve-smoke:
	$(GO) test -race ./internal/serve/
	$(GO) run ./cmd/bsplogp -loadtest -quick -clients 4 -jobsper 2 -experiment E6 -serveout /tmp/SERVE_smoke.json

# Regenerate the checked-in SERVE_logp.json (see EXPERIMENTS.md): the
# default load shape, 8 clients x 4 jobs of E3 -quick against an
# in-process server.
serve-report:
	$(GO) run ./cmd/bsplogp -loadtest -quick -serveout SERVE_logp.json

# Regenerate the checked-in AUDIT_logp.json (see EXPERIMENTS.md).
audit-report:
	$(GO) run ./cmd/bsplogp -all -quick -audit -auditout AUDIT_logp.json

experiments:
	$(GO) run ./cmd/bsplogp -all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/samplesort
	$(GO) run ./examples/matmul
	$(GO) run ./examples/broadcast
	$(GO) run ./examples/hotspot
	$(GO) run ./examples/radixsort
	$(GO) run ./examples/models

cover:
	$(GO) test -cover ./internal/...

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
