// Package repro is an executable reproduction of "BSP vs LogP"
// (Bilardi, Herley, Pietracaprina, Pucci, Spirakis; SPAA 1996 /
// Algorithmica 1999): cycle-accurate BSP and LogP virtual machines,
// the paper's cross-simulations in both directions, the collectives
// and routing protocols they are built from, and a packet-level
// network simulator for the Section 5 topology analysis.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmarks in bench_test.go regenerate every table and
// figure; `go run ./cmd/bsplogp -all` prints them.
package repro
